module Metrics = Sfr_obs.Metrics
module Flight = Sfr_obs.Flight
module Telemetry = Sfr_obs.Telemetry

let m_opened = Metrics.counter "serve.sessions.opened"
let m_finished = Metrics.counter "serve.sessions.finished"
let m_racy = Metrics.counter "serve.sessions.racy"
let m_shed_sessions = Metrics.counter "serve.shed.sessions"
let m_shed_bytes = Metrics.counter "serve.shed.bytes"
let m_block_rejects = Metrics.counter "serve.block.rejects"
let m_park_transitions = Metrics.counter "serve.park.transitions"
let m_deadline = Metrics.counter "serve.timeouts.deadline"
let m_idle = Metrics.counter "serve.timeouts.idle"
let m_disconnects = Metrics.counter "serve.disconnects"
let m_queued_hw = Metrics.counter ~kind:`Max "serve.queued.bytes"

type overload = Shed | Park | Block

let overload_to_string = function
  | Shed -> "shed"
  | Park -> "park"
  | Block -> "block"

let overload_of_string = function
  | "shed" -> Some Shed
  | "park" -> Some Park
  | "block" -> Some Block
  | _ -> None

type config = {
  session : Session.config;
  global_budget : int;
  overload : overload;
  pool_domains : int;
  defer_ingest : bool;
}

let default_config =
  {
    session = Session.default_config;
    global_budget = 4 * 1024 * 1024;
    overload = Shed;
    pool_domains = 0;
    defer_ingest = false;
  }

exception Fatal of string

let () =
  Printexc.register_printer (function
    | Fatal msg -> Some (Printf.sprintf "Sfr_serve.Server.Fatal(%s)" msg)
    | _ -> None)

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* -- the ingest pool ----------------------------------------------------- *)

(* A plain mutex/condvar job queue over Domain.spawn workers. Jobs are
   session-drain loops: each loops until its session's queue is empty,
   so the queue never holds more than one job per connection. *)
type pool = {
  jobs : (unit -> unit) Queue.t;
  pmu : Mutex.t;
  work : Condition.t;  (** signaled on submit and stop *)
  idle : Condition.t;  (** signaled when a worker finishes a job *)
  mutable running : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let pool_worker p () =
  Metrics.domain_enter ();
  let continue_ = ref true in
  while !continue_ do
    Mutex.lock p.pmu;
    while Queue.is_empty p.jobs && not p.stop do
      Condition.wait p.work p.pmu
    done;
    if p.stop && Queue.is_empty p.jobs then begin
      Mutex.unlock p.pmu;
      continue_ := false
    end
    else begin
      let job = Queue.pop p.jobs in
      p.running <- p.running + 1;
      Mutex.unlock p.pmu;
      (try job () with _ -> () (* isolation: a job must not kill the pool *));
      Mutex.lock p.pmu;
      p.running <- p.running - 1;
      Condition.broadcast p.idle;
      Mutex.unlock p.pmu
    end
  done;
  Metrics.domain_exit ()

let pool_create n =
  let p =
    {
      jobs = Queue.create ();
      pmu = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      running = 0;
      stop = false;
      workers = [];
    }
  in
  p.workers <- List.init n (fun _ -> Domain.spawn (pool_worker p));
  p

let pool_submit p job =
  Mutex.lock p.pmu;
  Queue.push job p.jobs;
  Condition.signal p.work;
  Mutex.unlock p.pmu

let pool_quiesce p =
  Mutex.lock p.pmu;
  while not (Queue.is_empty p.jobs && p.running = 0) do
    Condition.wait p.idle p.pmu
  done;
  Mutex.unlock p.pmu

let pool_shutdown p =
  Mutex.lock p.pmu;
  p.stop <- true;
  Condition.broadcast p.work;
  Mutex.unlock p.pmu;
  List.iter Domain.join p.workers;
  p.workers <- []

(* -- the server ---------------------------------------------------------- *)

type conn = {
  cmu : Mutex.t;  (** serializes session access and [send] *)
  send : Bytes.t -> unit;
  mutable session : Session.t option;  (** [None] once reaped *)
  mutable busy : bool;  (** an ingest job is scheduled or running *)
  mutable gone : bool;  (** transport reported disconnect *)
}

type t = {
  cfg : config;
  now_ms : unit -> int;
  smu : Mutex.t;  (** table, ids, budget, park state, outcomes *)
  mutable conns : conn list;
  mutable next_sid : int;
  mutable global_queued : int;
  mutable is_parked : bool;
  mutable outcomes_rev : Session.outcome list;
  pool : pool option;
  mutable stopped : bool;
}

(* Crash-hook registry: Flight hooks cannot be removed, so one hook is
   registered at module load and walks whichever servers are live. *)
let live : t list ref = ref []
let live_mu = Mutex.create ()

let dump_sessions t =
  (* Crash path: read without taking locks — a torn line in a post-
     mortem dump beats deadlocking inside the dumper. *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "serve: queued=%dB budget=%dB policy=%s parked=%b\n"
       t.global_queued t.cfg.global_budget
       (overload_to_string t.cfg.overload)
       t.is_parked);
  List.iter
    (fun c ->
      match c.session with
      | None -> ()
      | Some s ->
          Buffer.add_string buf
            (Printf.sprintf
               "serve: session %d %s queued=%dB busy=%b gone=%b last_ms=%d\n"
               (Session.id s)
               (if Session.finished s then "finished"
                else if Session.awaiting_hello s then "hello"
                else "streaming")
               (Session.queued_bytes s) c.busy c.gone
               (Session.last_activity_ms s)))
    t.conns;
  Buffer.contents buf

let () =
  Flight.add_crash_hook (fun () ->
      let servers = with_lock live_mu (fun () -> !live) in
      List.iter
        (fun t ->
          prerr_string (dump_sessions t);
          List.iter
            (fun c ->
              match c.session with
              | Some s -> Flight.note ~arg:(Session.id s) "serve.crash.session"
              | None -> ())
            t.conns)
        servers;
      if servers <> [] then begin
        (* recent operational history: telemetry marks (what phases the
           daemon went through) and the audit tail (which sessions were
           in flight and why they ended) *)
        let marks =
          List.concat_map (fun (s : Telemetry.sample) -> s.marks)
            (Telemetry.samples ())
        in
        if marks <> [] then
          prerr_string
            (Printf.sprintf "serve: telemetry marks: %s\n"
               (String.concat ", " marks));
        prerr_string (Audit.tail_to_text ())
      end)

let default_clock () =
  let t0 = Sfr_obs.Prof.now_ns () in
  fun () -> (Sfr_obs.Prof.now_ns () - t0) / 1_000_000

let create ?now_ms cfg =
  if cfg.global_budget < 1 then
    invalid_arg "Server.create: global_budget must be >= 1";
  if cfg.pool_domains < 0 then
    invalid_arg "Server.create: pool_domains must be >= 0";
  let t =
    {
      cfg;
      now_ms = (match now_ms with Some f -> f | None -> default_clock ());
      smu = Mutex.create ();
      conns = [];
      next_sid = 0;
      global_queued = 0;
      is_parked = false;
      outcomes_rev = [];
      pool =
        (if cfg.pool_domains = 0 then None
         else Some (pool_create cfg.pool_domains));
      stopped = false;
    }
  in
  with_lock live_mu (fun () -> live := t :: !live);
  t

let send_frames conn frames =
  (* caller holds conn.cmu *)
  if frames <> [] && not conn.gone then begin
    let buf = Buffer.create 64 in
    List.iter (Frame.encode buf) frames;
    conn.send (Buffer.to_bytes buf)
  end

(* Settle an effect against the global budget; returns the follow-up
   action the caller must apply OUTSIDE the server lock (overload
   handling touches per-connection locks). *)
type post = Nothing | Do_shed of conn | Set_credit of conn list * bool

let record_outcome t (s : Session.t) =
  match Session.outcome s with
  | None when Session.admin_only s ->
      (* an admin session finishes without an outcome by design — it
         never streamed and must not count toward served sessions *)
      ()
  | None ->
      Flight.crash_dump ~reason:"serve: finished session without outcome";
      raise (Fatal "finished session without outcome")
  | Some o ->
      t.outcomes_rev <- o :: t.outcomes_rev;
      Metrics.incr m_finished;
      if o.Session.code = Frame.Ok_races then Metrics.incr m_racy

let settle t conn (eff : Session.effect_) =
  if eff.Session.send = [] && eff.Session.accepted = 0
     && eff.Session.released = 0 && not eff.Session.finished
  then Nothing
  else
    with_lock t.smu (fun () ->
        t.global_queued <-
          t.global_queued + eff.Session.accepted - eff.Session.released;
        if t.global_queued < 0 then begin
          Flight.crash_dump ~reason:"serve: negative global queue";
          raise (Fatal "negative global byte accounting")
        end;
        Metrics.add m_queued_hw t.global_queued;
        if eff.Session.finished then begin
          (match conn.session with
          | Some s when Session.finished s -> record_outcome t s
          | _ -> ());
          t.conns <- List.filter (fun c -> c != conn) t.conns
        end;
        (* Park hysteresis: freeze credit above the budget, thaw below
           half of it. *)
        if t.cfg.overload = Park then begin
          if (not t.is_parked) && t.global_queued > t.cfg.global_budget
          then begin
            t.is_parked <- true;
            Metrics.incr m_park_transitions;
            Audit.emit
              (Audit.Park
                 { queued = t.global_queued; budget = t.cfg.global_budget });
            Set_credit (t.conns, false)
          end
          else if t.is_parked && t.global_queued <= t.cfg.global_budget / 2
          then begin
            t.is_parked <- false;
            Metrics.incr m_park_transitions;
            Audit.emit
              (Audit.Thaw
                 { queued = t.global_queued; budget = t.cfg.global_budget });
            Set_credit (t.conns, true)
          end
          else Nothing
        end
        else if
          t.cfg.overload = Shed
          && eff.Session.accepted > 0
          && t.global_queued > t.cfg.global_budget
          && not eff.Session.finished
        then Do_shed conn
        else Nothing)

let over_budget t =
  with_lock t.smu (fun () -> t.global_queued > t.cfg.global_budget)

(* The universal follow-up driver: settle an effect, then apply the
   overload action it demanded. Shedding produces a second effect that
   is settled recursively (it only releases bytes, so recursion
   terminates immediately). *)
let rec apply_post t post =
  match post with
  | Nothing -> ()
  | Set_credit (conns, v) ->
      List.iter
        (fun c ->
          with_lock c.cmu (fun () ->
              match c.session with
              | Some s when not (Session.finished s) ->
                  Session.set_grant_credit s v;
                  if v then begin
                    (* catch-up grant: drains during the park earned no
                       credit, so clients may be stalled at zero *)
                    let eff = Session.replenish_credit s in
                    send_frames c eff.Session.send
                  end
              | _ -> ()))
        conns
  | Do_shed conn ->
      let eff =
        with_lock conn.cmu (fun () ->
            match conn.session with
            | Some s when not (Session.finished s) ->
                let queued = Session.queued_bytes s in
                let eff =
                  Session.finish_overload s
                    ~message:
                      (Printf.sprintf
                         "global byte budget (%dB) exceeded; retry later"
                         t.cfg.global_budget)
                in
                Metrics.incr m_shed_sessions;
                Metrics.add m_shed_bytes queued;
                Audit.emit
                  (Audit.Shed { session = Session.id s; evicted = queued });
                send_frames conn eff.Session.send;
                Some eff
            | _ -> None)
      in
      (match eff with
      | Some eff -> apply_post t (settle t conn eff)
      | None -> ())

(* Schedule (or run inline) the drain loop for a connection. *)
let rec drain_loop t conn =
  let continue_ =
    with_lock conn.cmu (fun () ->
        match conn.session with
        | Some s when Session.needs_ingest s ->
            let eff = Session.ingest s in
            send_frames conn eff.Session.send;
            Some eff
        | Some s when conn.gone && not (Session.finished s) ->
            let eff = Session.on_disconnect s in
            send_frames conn eff.Session.send;
            Some eff
        | _ ->
            conn.busy <- false;
            None)
  in
  match continue_ with
  | Some eff ->
      apply_post t (settle t conn eff);
      drain_loop t conn
  | None -> ()

let pump t conn =
  let schedule =
    with_lock conn.cmu (fun () ->
        let wanted =
          match conn.session with
          | Some s ->
              (not (Session.finished s))
              && (Session.needs_ingest s || conn.gone)
          | None -> false
        in
        if wanted && not conn.busy then begin
          conn.busy <- true;
          true
        end
        else false)
  in
  if schedule then
    match t.pool with
    | None -> drain_loop t conn
    | Some p -> pool_submit p (fun () -> drain_loop t conn)

let connect t ~send =
  let now = t.now_ms () in
  let sid, parked_now =
    with_lock t.smu (fun () ->
        let sid = t.next_sid in
        t.next_sid <- sid + 1;
        (sid, t.is_parked))
  in
  Metrics.incr m_opened;
  Audit.emit (Audit.Session_open { session = sid });
  let s = Session.create ~id:sid ~now_ms:now t.cfg.session in
  if parked_now then Session.set_grant_credit s false;
  let conn =
    { cmu = Mutex.create (); send; session = Some s; busy = false; gone = false }
  in
  with_lock t.smu (fun () -> t.conns <- conn :: t.conns);
  conn

let session_id conn =
  with_lock conn.cmu (fun () -> Option.map Session.id conn.session)

(* -- the admin plane ----------------------------------------------------- *)

(* Session fields are read under smu only (not each conn's cmu), the
   same single-torn-read tolerance as [dump_sessions]: the admin plane
   must never contend with, or deadlock against, the data plane. *)
let stats_json t =
  let now = t.now_ms () in
  let b = Buffer.create 512 in
  with_lock t.smu (fun () ->
      Printf.bprintf b
        "{\"server\":{\"policy\":%S,\"parked\":%b,\"budget_bytes\":%d,\"queued_bytes\":%d,\"headroom_bytes\":%d,\"finished_sessions\":%d,\"audit_records\":%d},\"sessions\":["
        (overload_to_string t.cfg.overload)
        t.is_parked t.cfg.global_budget t.global_queued
        (max 0 (t.cfg.global_budget - t.global_queued))
        (List.length t.outcomes_rev)
        (Audit.record_count ());
      let first = ref true in
      List.iter
        (fun c ->
          match c.session with
          | None -> ()
          | Some s ->
              if not !first then Buffer.add_char b ',';
              first := false;
              Printf.bprintf b
                "{\"session\":%d,\"phase\":%S,\"queued_bytes\":%d,\"credit\":%d,\"age_ms\":%d,\"idle_ms\":%d,\"busy\":%b,\"gone\":%b}"
                (Session.id s) (Session.phase_name s)
                (Session.queued_bytes s) (Session.credit s)
                (now - Session.started_ms s)
                (now - Session.last_activity_ms s)
                c.busy c.gone)
        t.conns);
  Buffer.add_string b "]}";
  Buffer.contents b

let health t =
  with_lock t.smu (fun () ->
      let healthy =
        (not t.is_parked) && t.global_queued <= t.cfg.global_budget
      in
      let detail =
        Printf.sprintf "policy=%s queued=%dB budget=%dB sessions=%d parked=%b"
          (overload_to_string t.cfg.overload)
          t.global_queued t.cfg.global_budget (List.length t.conns) t.is_parked
      in
      (healthy, detail))

let prometheus t =
  let active, queued, headroom, parked_now =
    with_lock t.smu (fun () ->
        ( List.length
            (List.filter
               (fun c ->
                 match c.session with
                 | Some s -> not (Session.finished s)
                 | None -> false)
               t.conns),
          t.global_queued,
          max 0 (t.cfg.global_budget - t.global_queued),
          t.is_parked ))
  in
  Telemetry.render_prometheus
    ~gauges:
      [
        ("serve.sessions.active", active);
        ("serve.budget.bytes", t.cfg.global_budget);
        ("serve.queued.bytes.now", queued);
        ("serve.budget.headroom.bytes", headroom);
        ("serve.parked", if parked_now then 1 else 0);
      ]
    ()

let admin_reply t (req : Session.admin_request) =
  match req with
  | Session.Admin_stats -> Frame.Stats_reply (stats_json t)
  | Session.Admin_health ->
      let healthy, detail = health t in
      Frame.Health_reply { healthy; detail }
  | Session.Admin_metrics -> Frame.Metrics_reply (prometheus t)

let on_bytes t conn bytes ~pos ~len =
  let now = t.now_ms () in
  let eff =
    with_lock conn.cmu (fun () ->
        match conn.session with
        | Some s when not (Session.finished s) ->
            (* Block policy: a HELLO arriving while over budget is
               refused before it can open a stream. *)
            if
              t.cfg.overload = Block && Session.awaiting_hello s
              && over_budget t
            then begin
              Metrics.incr m_block_rejects;
              Audit.emit (Audit.Block { session = Session.id s });
              let eff =
                Session.finish_overload s
                  ~message:
                    (Printf.sprintf
                       "server over byte budget (%dB); retry later"
                       t.cfg.global_budget)
              in
              send_frames conn eff.Session.send;
              Some eff
            end
            else begin
              let eff = Session.on_bytes s ~now_ms:now bytes ~pos ~len in
              send_frames conn eff.Session.send;
              Some eff
            end
        | _ -> None)
  in
  match eff with
  | None -> ()
  | Some eff ->
      apply_post t (settle t conn eff);
      (* Admin replies are built outside conn.cmu (stats take the server
         lock; cmu -> smu is the allowed order but holding cmu across
         the whole table walk would stall this connection's data plane)
         and sent under it. *)
      if eff.Session.admin <> [] then begin
        let frames = List.map (admin_reply t) eff.Session.admin in
        with_lock conn.cmu (fun () -> send_frames conn frames)
      end;
      if not t.cfg.defer_ingest then pump t conn

let on_disconnect t conn =
  Metrics.incr m_disconnects;
  with_lock conn.cmu (fun () -> conn.gone <- true);
  if not t.cfg.defer_ingest then pump t conn

let tick t =
  let now = t.now_ms () in
  let conns = with_lock t.smu (fun () -> t.conns) in
  List.iter
    (fun conn ->
      let eff =
        with_lock conn.cmu (fun () ->
            match conn.session with
            | Some s when not (Session.finished s) -> (
                match Session.check_timeout s ~now_ms:now with
                | Some eff ->
                    (match Session.outcome s with
                    | Some o when o.Session.code = Frame.Err_deadline ->
                        Metrics.incr m_deadline
                    | Some o when o.Session.code = Frame.Err_idle ->
                        Metrics.incr m_idle
                    | _ -> ());
                    send_frames conn eff.Session.send;
                    Some eff
                | None -> None)
            | _ -> None)
      in
      match eff with
      | None -> ()
      | Some eff -> apply_post t (settle t conn eff))
    conns;
  if t.cfg.defer_ingest then List.iter (fun conn -> pump t conn) conns

let quiesce t = match t.pool with None -> () | Some p -> pool_quiesce p

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    quiesce t;
    (match t.pool with None -> () | Some p -> pool_shutdown p);
    with_lock live_mu (fun () -> live := List.filter (fun x -> x != t) !live)
  end

let outcomes t = with_lock t.smu (fun () -> List.rev t.outcomes_rev)

let active_sessions t =
  with_lock t.smu (fun () ->
      List.length
        (List.filter
           (fun c ->
             match c.session with
             | Some s -> not (Session.finished s)
             | None -> false)
           t.conns))

let queued_bytes t = with_lock t.smu (fun () -> t.global_queued)
let parked t = with_lock t.smu (fun () -> t.is_parked)
