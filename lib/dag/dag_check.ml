type violation = { code : string; message : string }

let v code fmt = Printf.ksprintf (fun message -> { code; message }) fmt

let validate_sf t =
  let out = ref [] in
  let emit x = out := x :: !out in
  let n = Dag.n_nodes t in
  let nf = Dag.n_futures t in
  (* every future completed, exactly one first node of the right kind *)
  for f = 0 to nf - 1 do
    (match Dag.last_of t f with
    | None -> emit (v "no-put" "future %d has no put node" f)
    | Some last ->
        if Dag.future_of t last <> f then
          emit (v "put-wrong-future" "future %d's put node belongs to future %d" f
                  (Dag.future_of t last)));
    let first = Dag.first_of t f in
    if Dag.future_of t first <> f then
      emit (v "first-wrong-future" "future %d's first node belongs elsewhere" f);
    match Dag.kind_of t first with
    | Dag.Root when f = 0 -> ()
    | Dag.Created when f > 0 -> ()
    | _ -> emit (v "first-kind" "future %d's first node has the wrong kind" f)
  done;
  (* Property 1/2 analogues and edge typing *)
  for u = 0 to n - 1 do
    List.iter
      (fun (ek, w) ->
        match ek with
        | Dag.Sp ->
            if Dag.future_of t u <> Dag.future_of t w then
              emit (v "sp-cross-future" "SP edge %d->%d crosses futures" u w)
        | Dag.Create_edge ->
            let g = Dag.future_of t w in
            if Dag.kind_of t w <> Dag.Created then
              emit (v "create-target" "create edge %d->%d targets a non-first node" u w);
            if Dag.first_of t g <> w then
              emit (v "create-not-first" "create edge %d->%d not into first(%d)" u w g);
            if Dag.fparent t g <> Some (Dag.future_of t u) then
              emit (v "create-parent" "future %d's parent mismatch" g)
        | Dag.Get_edge ->
            let g = Dag.future_of t u in
            if Dag.last_of t g <> Some u then
              emit
                (v "get-source" "get edge %d->%d does not originate at last(%d)" u w g);
            if Dag.kind_of t w <> Dag.Get then
              emit (v "get-target" "get edge %d->%d targets a non-get node" u w))
      (Dag.succs t u)
  done;
  (* structured use: the create-to-get dependence must flow through the
     continuation (not through the created future itself). We check it on
     the dag with the create edge into that future removed: the get strand's
     SP-predecessor must be reachable from the create continuation. *)
  for f = 1 to nf - 1 do
    match Dag.get_node_of t f with
    | None -> () (* never touched: fine (futures may go ungotten) *)
    | Some gnode -> (
        match Dag.create_cont_of t f with
        | None -> emit (v "no-cont" "future %d has a get but no creation record" f)
        | Some cont ->
            (* the strand that invoked get: the unique SP predecessor *)
            let sp_preds =
              List.filter_map
                (fun (ek, u) -> if ek = Dag.Sp then Some u else None)
                (Dag.preds t gnode)
            in
            let invoker = match sp_preds with [ u ] -> Some u | _ -> None in
            (match invoker with
            | None ->
                emit (v "get-shape" "get node %d lacks a unique SP predecessor" gnode)
            | Some u ->
                if not (cont = u || Dag_algo.reaches t Dag_algo.Full cont u) then
                  emit
                    (v "unstructured-get"
                       "future %d: no create-continuation-to-get dependence (cont \
                        node %d, get invoker %d)"
                       f cont u)))
  done;
  List.rev !out

let validate_sf_exn t =
  match validate_sf t with
  | [] -> ()
  | vs ->
      failwith
        (String.concat "; " (List.map (fun x -> x.code ^ ": " ^ x.message) vs))

let is_sp_dag t = Dag.n_futures t = 1
