(* Tests for the P-worker greedy scheduling simulator: exact answers on
   canonical dags, Brent's bounds and monotonicity as properties over
   random structured programs. *)

module Dag = Sfr_dag.Dag
module Dag_algo = Sfr_dag.Dag_algo
module Sim_sched = Sfr_runtime.Sim_sched
module Serial_exec = Sfr_runtime.Serial_exec
module Trace = Sfr_runtime.Trace
module Program = Sfr_runtime.Program
module Synthetic = Sfr_workloads.Synthetic

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let record prog =
  let trace, cb, root = Trace.make () in
  let (), _ = Serial_exec.run cb ~root prog in
  Trace.dag trace

(* a serial chain gains nothing from more workers *)
let test_chain () =
  let dag =
    record (fun () ->
        for _ = 1 to 10 do
          Program.work 5
        done)
  in
  let m1 = Sim_sched.makespan dag ~workers:1 in
  let m4 = Sim_sched.makespan dag ~workers:4 in
  check int "chain: P=4 equals P=1" m1 m4;
  (* one strand of cost 50, plus the constant control unit *)
  check int "chain makespan" 51 m1

(* independent spawned tasks scale perfectly until the span binds *)
let test_wide () =
  let dag =
    record (fun () ->
        for _ = 1 to 8 do
          Program.spawn (fun () -> Program.work 100)
        done;
        Program.sync ())
  in
  let m1 = Sim_sched.makespan dag ~workers:1 in
  let m8 = Sim_sched.makespan dag ~workers:8 in
  check bool "wide: near-linear speedup at P=8" true
    (float_of_int m1 /. float_of_int m8 > 6.0)

let test_workers_validated () =
  let dag = record (fun () -> Program.work 1) in
  Alcotest.check_raises "workers >= 1"
    (Invalid_argument "Sim_sched.makespan: workers must be >= 1") (fun () ->
      ignore (Sim_sched.makespan dag ~workers:0))

let test_custom_cost () =
  let dag = record (fun () -> Program.work 7) in
  check int "custom cost" 3 (Sim_sched.makespan ~cost:(fun _ -> 3) dag ~workers:1)

let gen_dag =
  QCheck2.Gen.map
    (fun seed ->
      let t = Synthetic.generate ~seed ~ops:80 ~depth:5 ~locs:8 () in
      record (Synthetic.instantiate t).Synthetic.program)
    QCheck2.Gen.(int_bound 1_000_000)

(* Brent: max(T1/P, T_inf) <= T_P <= T1/P + T_inf, with the same cost
   model the simulator uses (1 + recorded cost per strand) *)
let prop_brent =
  QCheck2.Test.make ~name:"greedy schedules satisfy Brent's bounds" ~count:80
    gen_dag (fun dag ->
      let cost v = 1 + Dag.cost_of dag v in
      let t1 = Sim_sched.makespan dag ~workers:1 in
      (* span under the same cost model *)
      let n = Dag.n_nodes dag in
      let depth = Array.make n 0 in
      let tinf = ref 0 in
      for v = 0 to n - 1 do
        let before =
          List.fold_left (fun acc (_, u) -> max acc depth.(u)) 0 (Dag.preds dag v)
        in
        depth.(v) <- before + cost v;
        if depth.(v) > !tinf then tinf := depth.(v)
      done;
      List.for_all
        (fun p ->
          let tp = Sim_sched.makespan dag ~workers:p in
          let lower = max ((t1 + p - 1) / p) !tinf in
          tp >= lower && tp <= (t1 / p) + !tinf + 1)
        [ 1; 2; 3; 5; 8 ])

let prop_monotone =
  QCheck2.Test.make ~name:"makespan non-increasing in workers" ~count:80 gen_dag
    (fun dag ->
      let ms = List.map (fun p -> Sim_sched.makespan dag ~workers:p) [ 1; 2; 4; 8 ] in
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b && non_increasing rest
        | _ -> true
      in
      non_increasing ms)

let prop_speedup_bounded =
  QCheck2.Test.make ~name:"speedup between 1 and P" ~count:80 gen_dag (fun dag ->
      List.for_all
        (fun p ->
          let s = Sim_sched.speedup dag ~workers:p in
          s >= 1.0 -. 1e-9 && s <= float_of_int p +. 1e-9)
        [ 1; 2; 4; 16 ])

let qtests =
  List.map QCheck_alcotest.to_alcotest [ prop_brent; prop_monotone; prop_speedup_bounded ]

let () =
  Alcotest.run "sim"
    [
      ( "unit",
        [
          Alcotest.test_case "serial chain" `Quick test_chain;
          Alcotest.test_case "wide fan" `Quick test_wide;
          Alcotest.test_case "workers validated" `Quick test_workers_validated;
          Alcotest.test_case "custom cost" `Quick test_custom_cost;
        ] );
      ("properties", qtests);
    ]
