(** Embarrassingly parallel offline detection: one structural pass, then
    per-location sharded access checking on N domains.

    Phase 1 replays only the {e structural} events (spawn / create / sync
    / put / get / returned) through a fresh SF-Order instance, building
    the complete reachability structures (WSP-Order positions, cp/gp
    future sets) and collecting the access events — resolved to their
    strand states — in the merge's linearized order. Once the structure
    is complete, [Precedes (u, v)] is frozen for every recorded pair:
    order-maintenance keeps the relative order of inserted strands
    forever, and strand future-sets are immutable once published, so
    phase 2 may query from any number of domains without synchronization.

    Phase 2 hashes each access location to one of [shards] shards
    (multiplicative hashing; a location's whole history lands in exactly
    one shard) and checks each shard on its own domain with a private
    access history and race collector, in phase-1 order. Per-location
    verdicts depend only on that location's access subsequence and on the
    frozen reachability relation — both independent of the shard count —
    so the merged report (sorted by location; shards partition locations,
    so the sort is a disjoint merge) is deterministic: byte-identical for
    1, 2 or 64 shards, and race-for-race identical to a live SF-Order run
    over the execution the log records. *)

type result = {
  reports : Sfr_detect.Race.report list;  (** merged, sorted by location *)
  racy_locations : int list;  (** sorted, distinct *)
  structural : int;  (** structural events replayed in phase 1 *)
  accesses : int;  (** access events checked in phase 2 *)
  shard_sizes : int array;  (** accesses per shard (length [shards]) *)
  queries : int;  (** reachability queries across all shards *)
}

val shard_of : loc:int -> shards:int -> int
(** The partition function (exposed so tests can pin it). *)

val run : Reader.t -> shards:int -> (result, Replay.error) Stdlib.result
(** @raise Invalid_argument if [shards < 1]. *)
