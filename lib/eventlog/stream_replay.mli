(** Incremental race detection over a streaming .sflog prefix.

    The offline pipeline ({!Replay} / {!Shard_replay}) needs the complete
    log before it runs. This module keeps a {!Stream_reader}, a growable
    state table, and a live SF-Order instance, and applies events with
    the same greedy topological merge as {!Replay.drive} — but
    {e resumably}: feed bytes, {!step} applies every event that became
    ready, and the race report is inspectable at any prefix. For a log
    recorded serially (one worker stream) the applied order is forced,
    so the verdict on a cleanly closed stream is byte-identical to
    offline [replay] of the same file.

    Two checking modes:
    - [~shards:1] (default): accesses are checked inline by the SF-Order
      callbacks, exactly as a live run would.
    - [~shards:n > 1]: structural events build reachability; access
      events accumulate in per-shard (location-hash) batches that are
      checked on [n] domains whenever a batch threshold fills — the
      streaming form of {!Shard_replay}. The merge of per-shard reports
      is deterministic and equals the offline sharded verdict on the
      same complete log. Shard checks are synchronous with {!step}
      (structure never advances while shard domains query it), so no
      cross-domain synchronization is needed beyond the join.

    Nothing here raises on bad input: decode errors, logical
    inconsistencies, and detector failures ({!Sfr_detect.Detect_error})
    all land in the {!verdict}'s typed status. *)

type status =
  | Complete  (** clean footer, every event applied *)
  | Torn of Log_format.error
      (** the stream stopped or corrupted mid-log; the verdict covers
          the analyzed prefix *)
  | Inconsistent of Replay.error
      (** CRC-clean but logically broken (stuck / redefined state) *)
  | Detector_failed of string
      (** the detector rejected the stream (e.g. a foreign state) *)

val status_to_string : status -> string

type verdict = {
  status : status;
  reports : Sfr_detect.Race.report list;  (** sorted by location *)
  racy_locations : int list;
  events_applied : int;
  bytes_analyzed : int;
      (** absolute prefix fully decoded — "analyzed up to byte N" *)
  queries : int;  (** reachability queries so far *)
}

type t

val create : ?shards:int -> ?access_batch:int -> unit -> t
(** [access_batch] (default 8192, sharded mode only) is the pending
    access count that triggers a parallel shard check.
    @raise Invalid_argument if [shards < 1]. *)

val feed : t -> Bytes.t -> pos:int -> len:int -> unit
(** Buffer incoming stream bytes. Cheap; no detection happens here. *)

val step : t -> unit
(** Decode what the fed bytes allow and apply every event whose inputs
    are defined. Call after [feed]; amortized cost is proportional to
    the bytes consumed. Errors latch into the eventual verdict instead
    of raising. *)

val close : t -> abrupt:bool -> verdict
(** Final verdict. [~abrupt:true] marks a disconnect without a clean
    end-of-stream: a stream that nevertheless decoded to a complete,
    fully-applied log is still [Complete]; otherwise the status is
    [Torn] with the exact analyzed prefix. [~abrupt:false] demands a
    validated footer and full application. Idempotent — the first
    verdict is cached and returned thereafter. *)

val partial : t -> verdict
(** Verdict-so-far without closing (status [Torn (Truncated _)] if the
    stream were to stop here, unless an error already latched). Sharded
    mode flushes pending access batches so the report is current. *)

val events_applied : t -> int

val bytes_analyzed : t -> int
