(** Execution recording: an {!Sfr_runtime.Events.callbacks} client that
    serializes the event stream to a .sflog file instead of detecting
    races online.

    The recorder threads a dense integer {e state ID} per strand. Each
    worker (OCaml domain) appends fixed-cost binary records to a private
    buffer — one buffer write per event when armed, no locks on the hot
    path — and flushes whole chunks to the shared output channel under a
    mutex when the buffer fills. Every state ID is allocated (one atomic
    fetch-and-add per {e structural} event; accesses allocate nothing)
    before any event referencing it can be recorded on any worker, so
    each worker stream is consistent with real time and the union of
    streams admits the greedy topological merge {!Replay} performs.

    Compose with other clients via {!Sfr_runtime.Events.pair} (e.g. to
    record and detect in the same run), or use alone for minimum-overhead
    production recording.

    Instances are single-use. {!close} must be called after the executor
    has returned (all domains joined): it flushes every worker buffer and
    writes the footer; a log without a footer is reported as truncated by
    the reader. *)

type t

type stats = {
  events : int;  (** events recorded across all workers *)
  bytes : int;  (** chunk payload bytes written *)
  flushes : int;  (** chunks written (buffer-full flushes + final) *)
  workers : int;  (** distinct domains that recorded events *)
  states : int;  (** state IDs allocated (strands) *)
}

val create :
  ?buf_size:int -> path:string -> unit -> t * Sfr_runtime.Events.callbacks * Sfr_runtime.Events.state
(** Open [path] for writing and return the recorder, its callbacks and
    the root state. [buf_size] (default 64 KiB) is the per-worker flush
    threshold.
    @raise Sys_error if [path] cannot be opened. *)

val close : t -> stats
(** Flush all buffers, write the footer, close the file. Idempotent
    (subsequent calls return the same stats without touching the file). *)
