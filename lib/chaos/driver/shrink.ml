module Synthetic = Sfr_workloads.Synthetic
module Metrics = Sfr_obs.Metrics

let m_shrink_steps = Metrics.counter "chaos.shrink_steps"

type result = {
  reduced : Synthetic.t;
  steps : int;
  initial_size : int;
  final_size : int;
}

(* Apply [f] to the node at preorder position [n] of [tree]; [f] returns
   the replacement list for that node ([] = delete subtree, body = hoist).
   Positions past the edit are left untouched. *)
let edit_at tree n f =
  let counter = ref n in
  let rec go ops =
    match ops with
    | [] -> []
    | op :: rest ->
        if !counter < 0 then op :: go rest
        else if !counter = 0 then begin
          decr counter;
          f op @ go rest
        end
        else begin
          decr counter;
          let op' =
            match op with
            | Synthetic.OSpawn (tid, body) -> Synthetic.OSpawn (tid, go body)
            | Synthetic.OCreate (tid, idx, body) ->
                Synthetic.OCreate (tid, idx, go body)
            | other -> other
          in
          op' :: go rest
        end
  in
  go tree

let rec nth_preorder ops n =
  match ops with
  | [] -> (None, n)
  | op :: rest ->
      if n = 0 then (Some op, -1)
      else
        let n = n - 1 in
        let inner, n =
          match op with
          | Synthetic.OSpawn (_, b) | Synthetic.OCreate (_, _, b) ->
              nth_preorder b n
          | _ -> (None, n)
        in
        if inner <> None || n < 0 then (inner, -1) else nth_preorder rest n

(* Greedy delta debugging over the operation tree: repeatedly sweep the
   preorder positions; at each, first try deleting the whole subtree,
   then (for spawn/create) hoisting its body into the parent frame.
   [test] must return true iff the candidate still exhibits the failure.
   Sweeps repeat to a fixpoint — deleting one node can make another
   deletable (e.g. a create whose get went away). *)
let shrink ?(max_steps = 10_000) ~test t0 =
  let steps = ref 0 in
  let budget_left () = !steps < max_steps in
  let race_free = Synthetic.race_free t0 in
  let locs = Synthetic.locs t0 in
  let attempt cand =
    incr steps;
    Metrics.incr m_shrink_steps;
    let t = Synthetic.of_tree ~race_free ~locs cand in
    if test t then Some t else None
  in
  let initial_size = Synthetic.size t0 in
  let cur = ref t0 in
  let changed = ref true in
  while !changed && budget_left () do
    changed := false;
    let pos = ref 0 in
    while !pos < Synthetic.size !cur && budget_left () do
      let tree = Synthetic.tree !cur in
      match attempt (edit_at tree !pos (fun _ -> [])) with
      | Some t ->
          (* stay at [pos]: the next node shifted into this position *)
          cur := t;
          changed := true
      | None -> (
          let hoisted =
            match fst (nth_preorder tree !pos) with
            | Some (Synthetic.OSpawn (_, body) | Synthetic.OCreate (_, _, body))
              when body <> [] ->
                attempt (edit_at tree !pos (fun _ -> body))
            | _ -> None
          in
          match hoisted with
          | Some t ->
              cur := t;
              changed := true;
              incr pos
          | None -> incr pos)
    done
  done;
  {
    reduced = !cur;
    steps = !steps;
    initial_size;
    final_size = Synthetic.size !cur;
  }
