type kind = Begin | End | Instant

type entry = {
  ts_ns : int;
  name : string;
  kind : kind;
  arg : int;
  dom : int;
  seq : int;
}

(* One ring per Metrics-style domain slot. Entries are immutable records
   written through an option array: a record store is one pointer write,
   so a torn entry is impossible; a mod-128 slot collision can interleave
   two domains' sequences, which a diagnostic buffer tolerates. *)
let capacity = 512
let nrings = 128

type ring = { mutable seq : int; slots : entry option array }

let rings = Array.init nrings (fun _ -> { seq = 0; slots = Array.make capacity None })

let on = Atomic.make true

let arm () = Atomic.set on true
let disarm () = Atomic.set on false
let armed () = Atomic.get on

let note ?(arg = 0) ?(kind = Instant) name =
  if Atomic.get on then begin
    let dom = (Domain.self () :> int) in
    let r = rings.(dom land (nrings - 1)) in
    let seq = r.seq in
    r.seq <- seq + 1;
    r.slots.(seq land (capacity - 1)) <-
      Some { ts_ns = Prof.now_ns (); name; kind; arg; dom; seq }
  end

let wrap ?arg name f =
  note ?arg ~kind:Begin name;
  Fun.protect ~finally:(fun () -> note ?arg ~kind:End name) f

let clear () =
  Array.iter
    (fun r ->
      r.seq <- 0;
      Array.fill r.slots 0 capacity None)
    rings

let entries () =
  let acc = ref [] in
  Array.iter
    (fun r ->
      Array.iter
        (function Some e -> acc := e :: !acc | None -> ())
        r.slots)
    rings;
  List.sort
    (fun a b ->
      match compare a.ts_ns b.ts_ns with 0 -> compare a.seq b.seq | c -> c)
    !acc

(* -- rendering ---------------------------------------------------------- *)

let kind_label = function Begin -> "begin" | End -> "end" | Instant -> "."

let pp_text ppf =
  match entries () with
  | [] -> Format.fprintf ppf "  (flight recorder empty)@."
  | es ->
      let t0 = (List.hd es).ts_ns in
      List.iter
        (fun e ->
          Format.fprintf ppf "  %12.3f us  dom %-3d %-5s %s%s@."
            (float_of_int (e.ts_ns - t0) /. 1e3)
            e.dom (kind_label e.kind) e.name
            (if e.arg <> 0 then Printf.sprintf " (%d)" e.arg else ""))
        es

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_chrome_json () =
  let es = entries () in
  let t0 = match es with [] -> 0 | e :: _ -> e.ts_ns in
  let b = Buffer.create (256 + (96 * List.length es)) in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "{\"name\":\"";
      escape b e.name;
      Buffer.add_string b "\",\"cat\":\"flight\",\"ph\":\"";
      Buffer.add_string b
        (match e.kind with Begin -> "B" | End -> "E" | Instant -> "i");
      Buffer.add_string b "\"";
      if e.kind = Instant then Buffer.add_string b ",\"s\":\"t\"";
      if e.arg <> 0 then
        Buffer.add_string b (Printf.sprintf ",\"args\":{\"arg\":%d}" e.arg);
      Buffer.add_string b
        (Printf.sprintf ",\"ts\":%.3f,\"pid\":1,\"tid\":%d}"
           (float_of_int (e.ts_ns - t0) /. 1e3)
           e.dom))
    es;
  Buffer.add_string b "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents b

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))

(* -- crash dumping ------------------------------------------------------ *)

let crash_path = Atomic.make (Sys.getenv_opt "SFR_FLIGHT_DUMP")
let crash_dumped = Atomic.make false

let set_crash_path p = Atomic.set crash_path p

let reset_crash_guard () = Atomic.set crash_dumped false

(* Other observability components (the telemetry sampler's JSONL stream,
   most importantly) register flush work to run before the process dies
   with the flight window. Hooks must never raise into the dump path. *)
let crash_hooks : (unit -> unit) list Atomic.t = Atomic.make []

let add_crash_hook f =
  let rec loop () =
    let hooks = Atomic.get crash_hooks in
    if not (Atomic.compare_and_set crash_hooks hooks (f :: hooks)) then loop ()
  in
  loop ()

let crash_dump ~reason =
  if not (Atomic.exchange crash_dumped true) then begin
    List.iter (fun f -> try f () with _ -> ()) (Atomic.get crash_hooks);
    Format.eprintf "-- flight recorder (%s) ---------------------------@." reason;
    pp_text Format.err_formatter;
    (match Atomic.get crash_path with
    | None -> ()
    | Some path -> (
        match write_chrome path with
        | () -> Format.eprintf "flight trace written to %s@." path
        | exception Sys_error msg ->
            Format.eprintf "cannot write flight trace: %s@." msg));
    Format.eprintf "---------------------------------------------------@."
  end
