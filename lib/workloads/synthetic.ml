module Prng = Sfr_support.Prng
module Program = Sfr_runtime.Program

type op =
  | OSpawn of int * op list (* task id, body *)
  | OCreate of int * int * op list (* task id, future index, body *)
  | OSync
  | OGet of int
  | ORead of int
  | OWrite of int (* in race-free mode: index into the task's private row *)
  | OWork of int

type t = {
  tree : op list;
  nfutures : int;
  ntasks : int;
  locs : int;
  race_free : bool;
  ops : int;
  gets : int;
}

(* -- generation --------------------------------------------------------- *)

let generate ?(race_free = false) ~seed ~ops ~depth ~locs () =
  let rng = Prng.create seed in
  let budget = ref ops in
  let next_future = ref 0 in
  let next_task = ref 1 (* 0 is the root task *) in
  let total_ops = ref 0 in
  let total_gets = ref 0 in
  (* split a random subset off the pool to hand to a child task *)
  let split_pool pool =
    List.partition (fun _ -> Prng.int rng 3 = 0) pool
  in
  (* returns the frame's ops and its leftover handle pool, surfaced to the
     parent across the joining sync (spawned children only) *)
  let rec gen_frame depth pool =
    let acc = ref [] in
    let pool = ref pool in
    let pending = ref [] in
    let emit op =
      incr total_ops;
      acc := op :: !acc
    in
    let steps = 2 + Prng.int rng 8 in
    for _ = 1 to steps do
      if !budget > 0 then begin
        decr budget;
        match Prng.int rng 8 with
        | (0 | 1) when depth > 0 ->
            let tid = !next_task in
            incr next_task;
            let give, keep = split_pool !pool in
            pool := keep;
            let child_ops, child_left = gen_frame (depth - 1) give in
            emit (OSpawn (tid, child_ops));
            pending := child_left @ !pending
        | (2 | 3) when depth > 0 ->
            let tid = !next_task in
            incr next_task;
            let idx = !next_future in
            incr next_future;
            let give, keep = split_pool !pool in
            pool := keep;
            let child_ops, _lost = gen_frame (depth - 1) give in
            emit (OCreate (tid, idx, child_ops));
            pool := idx :: !pool
        | 4 ->
            emit OSync;
            pool := !pending @ !pool;
            pending := []
        | (5 | 6) when !pool <> [] ->
            let i = Prng.int rng (List.length !pool) in
            let h = List.nth !pool i in
            pool := List.filteri (fun j _ -> j <> i) !pool;
            incr total_gets;
            emit (OGet h)
        | _ -> (
            match Prng.int rng 3 with
            | 0 -> emit (ORead (Prng.int rng locs))
            | 1 -> emit (OWrite (Prng.int rng locs))
            | _ -> emit (OWork (1 + Prng.int rng 4)))
      end
    done;
    (* the frame-end implicit sync surfaces any remaining child handles *)
    (List.rev !acc, !pending @ !pool)
  in
  let tree, _leftover = gen_frame depth [] in
  {
    tree;
    nfutures = !next_future;
    ntasks = !next_task;
    locs;
    race_free;
    ops = !total_ops;
    gets = !total_gets;
  }

(* -- interpretation ------------------------------------------------------ *)

type instance = {
  program : unit -> unit;
  checksum : unit -> int;
  mem_base : int;
}

let instantiate t =
  let mem = Program.alloc (max 1 t.locs) 0 in
  (* race-free mode: a private write row per task, plus a read-only
     shared region (written only during uninstrumented setup) *)
  let private_mem =
    if t.race_free then Program.alloc (max 1 (t.ntasks * t.locs)) 0
    else Program.alloc 1 0
  in
  if t.race_free then
    for i = 0 to t.locs - 1 do
      Program.wr_raw mem i i
    done;
  let handles : int Program.handle option Atomic.t array =
    Array.init (max 1 t.nfutures) (fun _ -> Atomic.make None)
  in
  let checksum = Atomic.make 0 in
  let handle_of idx =
    match Atomic.get handles.(idx) with
    | Some h -> h
    | None -> assert false (* generation guarantees create precedes get *)
  in
  (* each task returns a deterministic local value: its future index plus
     the values it got (get results are deterministic by induction; racy
     memory reads never enter the checksum) *)
  let rec interp tid local ops =
    List.fold_left
      (fun local op ->
        match op with
        | OSpawn (child_tid, body) ->
            Program.spawn (fun () -> ignore (interp child_tid 0 body));
            local
        | OCreate (child_tid, idx, body) ->
            let h = Program.create (fun () -> interp child_tid (idx + 1) body) in
            Atomic.set handles.(idx) (Some h);
            local
        | OSync ->
            Program.sync ();
            local
        | OGet idx ->
            let v = Program.get (handle_of idx) in
            ignore (Atomic.fetch_and_add checksum v);
            local + v
        | ORead i ->
            ignore (Program.rd mem i);
            local
        | OWrite i ->
            if t.race_free then
              Program.wr private_mem ((tid * t.locs) + i) (local land 0xff)
            else Program.wr mem i (local land 0xff);
            local
        | OWork n ->
            Program.work n;
            local + 1)
      local ops
  in
  {
    program = (fun () -> ignore (interp 0 0 t.tree));
    checksum = (fun () -> Atomic.get checksum);
    mem_base = Program.base mem;
  }

let stats t = (t.ops, t.nfutures, t.gets)

(* -- tree surgery (chaos shrinking) -------------------------------------- *)

let tree t = t.tree
let locs t = t.locs
let race_free t = t.race_free

let rec node_count ops =
  List.fold_left
    (fun acc op ->
      acc + 1
      + (match op with OSpawn (_, b) | OCreate (_, _, b) -> node_count b | _ -> 0))
    0 ops

let size t = node_count t.tree

let of_tree ?(race_free = false) ~locs tree =
  (* Rebuild the derived fields from an edited tree. A shrinker may have
     removed the OCreate a surviving OGet referred to; such orphan gets
     would trip the interpreter's handle table, so drop any OGet whose
     create does not precede it in preorder (= serial execution order,
     under which the handle is published before the get runs). *)
  let created = Hashtbl.create 16 in
  let nfutures = ref 0 in
  let ntasks = ref 1 in
  let ops = ref 0 in
  let gets = ref 0 in
  let rec walk l =
    List.filter_map
      (fun op ->
        match op with
        | OSpawn (tid, body) ->
            incr ops;
            ntasks := max !ntasks (tid + 1);
            Some (OSpawn (tid, walk body))
        | OCreate (tid, idx, body) ->
            incr ops;
            ntasks := max !ntasks (tid + 1);
            nfutures := max !nfutures (idx + 1);
            let body = walk body in
            (* the handle is published only after the create returns, so
               mark it created after walking the body *)
            Hashtbl.replace created idx ();
            Some (OCreate (tid, idx, body))
        | OGet idx ->
            if Hashtbl.mem created idx then begin
              incr ops;
              incr gets;
              Some op
            end
            else None
        | OSync | ORead _ | OWrite _ | OWork _ ->
            incr ops;
            Some op)
      l
  in
  let tree = walk tree in
  {
    tree;
    nfutures = !nfutures;
    ntasks = !ntasks;
    locs;
    race_free;
    ops = !ops;
    gets = !gets;
  }
