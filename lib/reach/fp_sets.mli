(** The [gp]/[cp] future-set engine (paper Sections 3.2 and 3.4).

    - [cp(G)]: for each future [G], the set of its future ancestors.
      Immutable once built; constructed at [create] by copying the
      parent's table and adding the parent — [O(k)] work per future,
      [O(k²)] total, exactly the paper's construction overhead.
    - [gp(v)]: for each strand [v], the set of futures [F] whose last node
      NSP-precedes [v]. Conceptually [gp(v) = ∪_{u→v} gp(u)]; tables are
      shared by pointer along serial chains and freshly merged only when
      each side holds a future the other lacks (plus one table per get
      node, which must add its gotten future's bit) — the paper argues
      this happens O(k) times.

    Tables are reference-counted for sharing, and immutable once
    published — additions copy — so a strand state's set never changes
    after the strand completes; a multicore executor hands each strand
    its own reference, and merge inputs are quiescent (their strands
    completed before the join, ordered by the runtime's join
    synchronization).

    Two backends mirror the paper's Section 4 comparison: [Bitmap] is
    SF-Order's array-of-bit-words representation (possible only because
    structured futures need just a membership bit per future); [Hashed] is
    the full hash-table-per-node representation general-futures detectors
    like F-Order are forced into. The ablation bench contrasts them. *)

type backend = Bitmap | Hashed

type t
(** Engine state: allocation statistics plus the shared empty table. *)

type table
(** A reference-counted future set. *)

val create : backend -> t
val backend : t -> backend

val empty : t -> table
(** A shared canonical empty table (refcount-pinned; never mutated). *)

val share : table -> table
(** The same table with its refcount bumped: the caller now owns one
    more reference. *)

val release : table -> unit
(** Give up one reference. *)

val mem : table -> int -> bool

val with_added : t -> table -> int -> table
(** [with_added t tbl i] consumes the caller's reference to [tbl] and
    returns an owned table equal to [tbl ∪ {i}] (by copy unless [i] is
    already present: published tables are immutable, so that a query
    against a completed strand's set — e.g. one stored in the access
    history or collected by a client — always sees the set as it was at
    that strand). *)

val merge : t -> table -> table list -> table
(** [merge t primary others] consumes the caller's references to all
    inputs and returns an owned table equal to their union. Allocates a
    fresh table only when no input subsumes all the others (the paper's
    merge-only-when-necessary rule). *)

val cardinal : table -> int
val elements : table -> int list

(* -- statistics (Figure 5 / ablation) --------------------------------- *)

val allocations : t -> int
(** Number of fresh tables ever allocated (the O(k) claim). *)

val live_words : t -> int
(** Machine words held by tables that still have owners. *)

val peak_words : t -> int

val total_words : t -> int
(** Cumulative words ever allocated into tables (never decremented) —
    what a retain-everything implementation like the paper's would hold,
    and the Figure 5 metric. *)
