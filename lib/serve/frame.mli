(** The racedetect-serve wire protocol: length-prefixed, CRC-checked
    frames carrying .sflog chunk streams and typed replies.

    {v
    stream ::= frame*
    frame  ::= tag (1 byte) | len:varint | payload (len bytes)
             | crc32(payload) (4 bytes, little-endian)
    v}

    Varints and CRC-32 are {!Sfr_eventlog.Log_format}'s codecs — the
    same 7-bit groups and polynomial as the log format the payloads
    carry. Client-to-server tags: [0x01 HELLO] (protocol version),
    [0x02 DATA] (a slice of the session's .sflog byte stream, cut
    anywhere — frame boundaries need not align with log chunks),
    [0x03 CLOSE] (clean end of stream), and the admin-plane requests
    [0x04 STATS] / [0x05 HEALTH] / [0x06 METRICS] (empty payloads,
    valid before or during a stream — a connection that only ever
    sends admin requests is an admin session and produces no
    outcome). Server-to-client: [0x10 WELCOME] (session id + initial
    credit), [0x11 CREDIT] (more bytes granted), [0x12 VERDICT]
    (terminal per-session result), [0x13 REJECT] (terminal refusal
    before or instead of a verdict), [0x14 STATS_REPLY] (a JSON
    document: server + per-session state), [0x15 HEALTH_REPLY]
    (healthy bit + detail string), [0x16 METRICS_REPLY] (Prometheus
    text exposition). Tag numbering is append-only — never renumber.

    Every terminal reply carries a {!reply_code} from the table
    mirrored in the README: clients branch on the code, not the
    message. *)

val protocol_version : int

(** Typed per-session reply codes. The numeric values are wire format —
    never renumber, only append. *)
type reply_code =
  | Ok_clean  (** 0 — complete log, no races *)
  | Ok_races  (** 1 — complete log, races reported *)
  | Err_torn  (** 10 — stream ended or corrupted mid-log; verdict covers the analyzed prefix *)
  | Err_inconsistent  (** 11 — CRC-clean log that is logically broken *)
  | Err_detector  (** 12 — detector rejected the stream *)
  | Err_protocol  (** 13 — frame-level violation (bad tag/CRC/order, credit exceeded) *)
  | Err_overload  (** 20 — shed under the global byte budget; retry later *)
  | Err_deadline  (** 21 — session exceeded its wall-clock deadline *)
  | Err_idle  (** 22 — no frame within the idle timeout *)

val reply_code_to_int : reply_code -> int
val reply_code_of_int : int -> reply_code option
val reply_code_name : reply_code -> string

val retryable : reply_code -> bool
(** True for the load/time codes (20–22): the same stream may succeed
    on a later attempt. False for the data-dependent codes — resending
    a torn file tears again. *)

type frame =
  | Hello of { version : int }
  | Data of Bytes.t
  | Close
  | Welcome of { session : int; credit : int }
  | Credit of int
  | Verdict of {
      code : reply_code;
      races : int;  (** racy locations *)
      events : int;  (** events applied *)
      bytes_analyzed : int;
      message : string;
    }
  | Reject of { code : reply_code; message : string }
  | Stats_req  (** admin: ask for the live session table / server state *)
  | Health_req  (** admin: one-bit liveness + a detail line *)
  | Metrics_req  (** admin: ask for a Prometheus scrape *)
  | Stats_reply of string  (** JSON document (see {!Server.stats_json}) *)
  | Health_reply of { healthy : bool; detail : string }
  | Metrics_reply of string  (** Prometheus text exposition *)

val pp : Format.formatter -> frame -> unit

val encode : Buffer.t -> frame -> unit

val to_bytes : frame -> Bytes.t
(** One frame's complete wire image. *)

(** {1 Incremental decoding} *)

type error =
  | Bad_tag of int
  | Bad_crc of { expected : int; got : int }
  | Too_large of { len : int; limit : int }
  | Malformed of { tag : int; what : string }

val error_to_string : error -> string

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] (default 4 MiB) bounds the length a frame header may
    declare — a hostile varint must not make the decoder buffer
    unboundedly. *)

val decoder_feed : decoder -> Bytes.t -> pos:int -> len:int -> unit

val decoder_next : decoder -> (frame option, error) result
(** [Ok None] = need more bytes. Errors are sticky: a poisoned stream
    stays poisoned. *)

val decoder_buffered : decoder -> int
