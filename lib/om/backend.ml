(* Order-maintenance backend registry: names the implementations of
   Om_intf.S and holds the process-wide default used when construction
   sites don't pass an explicit backend (the same pattern as the
   detector Registry from the `--om` flag's point of view). *)

type name = [ `List | `Depa ]

let all : name list = [ `List; `Depa ]

let to_string = function `List -> "list" | `Depa -> "depa"

let of_string = function
  | "list" -> Some `List
  | "depa" -> Some `Depa
  | _ -> None

let get : name -> (module Om_intf.S) = function
  | `List -> (module Om)
  | `Depa -> (module Depa)

(* The process-wide default. CLI entry points set it once from --om
   before any detector is constructed; Sp_order.create reads it when no
   explicit ?backend is given, so registry-made detectors (whose make
   functions take no arguments) pick the selected backend up too. *)
let default_backend : name Atomic.t = Atomic.make `List

let default () = Atomic.get default_backend
let set_default b = Atomic.set default_backend b
