(** Always-on flight recorder: per-domain ring buffers of recent
    spans/instants, dumped post-mortem.

    {!Sfr_obs.Trace_event} answers "show me everything" and is off by
    default because unbounded buffering is not free. The flight recorder
    answers the complementary question — {e what was the process doing
    just before it went wrong?} — so it is {b armed by default} and
    bounded: each domain slot owns a fixed ring of the most recent
    entries, overwritten in place. A disarmed or armed note costs one
    atomic flag load plus (when armed) one clock read and two plain
    stores into the caller's own ring; there is no lock and no shared
    cache line on the record path.

    Rings are indexed by [Domain.self () land 127] like {!Metrics}
    slots: two domains colliding mod 128 can interleave (and lose)
    entries but never crash — acceptable for a diagnostic buffer.

    Dumps render both as aligned text (for stderr) and as Chrome
    [trace_event] JSON (for chrome://tracing / Perfetto). The crash
    hooks wire it to the failure paths: the parallel executor dumps on
    an uncaught task exception, the chaos runner on a differential
    mismatch, and [racedetect run --flight-dump FILE] on demand. *)

type kind = Begin | End | Instant

type entry = {
  ts_ns : int;  (** {!Prof.now_ns} timestamp *)
  name : string;
  kind : kind;
  arg : int;  (** site-specific payload (location, seed, …); 0 if unused *)
  dom : int;  (** recording domain ID *)
  seq : int;  (** per-ring sequence number (monotonic, pre-wrap order) *)
}

val arm : unit -> unit
val disarm : unit -> unit
val armed : unit -> bool
(** Armed by default at module load. *)

val note : ?arg:int -> ?kind:kind -> string -> unit
(** Record an entry into the calling domain's ring (default kind
    [Instant]). Name strings should be literals — the recorder stores
    the pointer, it never copies. *)

val wrap : ?arg:int -> string -> (unit -> 'a) -> 'a
(** [wrap name f] brackets [f] with [Begin]/[End] entries
    (exception-safe); renders as a span pair in the Chrome dump. *)

val entries : unit -> entry list
(** Snapshot of every live ring entry, oldest first (sorted by
    timestamp). Unsynchronized reads: a dump taken while other domains
    record may miss or tear the newest few entries, never older ones. *)

val clear : unit -> unit

val capacity : int
(** Entries retained per domain ring. *)

val pp_text : Format.formatter -> unit
(** Aligned text dump of {!entries}, timestamps relative to the oldest
    retained entry. *)

val to_chrome_json : unit -> string

val write_chrome : string -> unit
(** Write {!to_chrome_json} to a file.
    @raise Sys_error like [open_out]. *)

(** {1 Crash dumping} *)

val set_crash_path : string option -> unit
(** Where {!crash_dump} additionally writes the Chrome JSON; also
    initialized from the [SFR_FLIGHT_DUMP] environment variable. *)

val add_crash_hook : (unit -> unit) -> unit
(** Register work to run at the start of the first {!crash_dump} —
    e.g. {!Telemetry} flushing its sample stream so a crash loses no
    samples. Hooks run in the dumping domain; exceptions they raise are
    swallowed (the dump must complete). Hooks cannot be removed: keep
    them idempotent and cheap when their component is inactive. *)

val crash_dump : reason:string -> unit
(** Dump the recorder to stderr (text) and, when a crash path is set,
    to that file (Chrome JSON). Only the {e first} call per process
    acts — repeated failures don't bury the interesting dump — until
    {!reset_crash_guard}. Never raises (file errors degrade to a
    stderr line). *)

val reset_crash_guard : unit -> unit
(** Re-enable {!crash_dump} (tests; long-lived drivers between runs). *)
