(** Append-only chunked vector with lock-free reads.

    Built for tables indexed by densely allocated IDs that are read on
    hot paths from many domains while a writer occasionally appends —
    SF-Order's per-future [cp] table is the motivating client. The
    alternatives both lose: a plain array doubles under a lock with an
    O(n) element copy per grow (and serializes every append against the
    copy), while a copy-on-write snapshot per append is O(n) {e every}
    time. Here chunks of [2{^9}] slots are shared structurally between
    spine snapshots, so

    - [get] is two dependent array loads off one atomic spine read —
      lock-free, wait-free, O(1);
    - [push] holds the internal lock for O(1) amortized work: claim a
      slot, and every 512 pushes install a fresh chunk behind a copied
      spine of chunk {e pointers} (elements are never copied or moved).

    Indices obtained from [push] must be communicated to other domains
    through a synchronizing handoff (any mutex or atomic with
    happens-before, e.g. a scheduler deque) before those domains [get]
    them — the usual publication contract for lock-free reads. *)

type 'a t

val create : ?on_alloc:(int -> unit) -> 'a -> 'a t
(** [create dummy] is an empty vector. [dummy] fills unclaimed chunk
    slots and is never returned by [get] on in-range indices.
    [on_alloc] is invoked (under the internal lock) with the number of
    words just allocated whenever a chunk plus spine copy is installed —
    the hook clients use to attribute container growth to a metrics
    counter without double-locking. *)

val push : 'a t -> 'a -> int
(** Append, returning the element's index. Thread-safe. *)

val get : 'a t -> int -> 'a
(** [get t i] for [0 <= i < length t]. Lock-free. *)

val length : 'a t -> int

(* -- accounting / test hooks ------------------------------------------ *)

val chunk_allocs : 'a t -> int
(** Chunks allocated so far — [⌈length / 512⌉]; the no-O(n)-copy claim. *)

val alloc_words : 'a t -> int
(** Cumulative words allocated into chunks and spine copies: O(length),
    against the O(length²) a copy-on-write-array representation pays. *)

val debug_chunks : 'a t -> 'a array array
(** The current spine (for structure-sharing tests). Do not mutate. *)
