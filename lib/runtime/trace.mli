(** Dag-recording client: threads {!Dag} nodes as strand states, so any
    execution (serial or parallel) leaves behind the computation dag with
    per-strand costs, plus the access counts Figure 3 reports.

    Compose with a detector via {!Events.pair} to record the dag of a
    detected run, or use alone for baseline characterization. *)

type Events.state += Node of Sfr_dag.Dag.node

type t

type access = { node : Sfr_dag.Dag.node; loc : int; is_write : bool }

val make : ?log_accesses:bool -> unit -> t * Events.callbacks * Events.state
(** Recorder, its callbacks, and the root state. With [log_accesses] every
    read/write is appended to a log — the input of the naive ground-truth
    race detector (test oracle). *)

val dag : t -> Sfr_dag.Dag.t
val reads : t -> int
val writes : t -> int
val accesses : t -> access list
(** Sorted by node ID, then location, then kind (reads before writes) —
    a deterministic order independent of executor and schedule, so
    access lists from different runs of the same program diff
    structurally. Empty unless [log_accesses] was set. *)

val node_of : Events.state -> Sfr_dag.Dag.node
(** @raise Invalid_argument on a foreign state. *)
