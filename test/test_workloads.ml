(* Workload tests: each paper benchmark must (a) compute the right answer
   under serial and parallel execution, (b) build a valid SF-dag, (c) be
   race-free as written and racy when a race is injected — with every
   detector agreeing with the ground-truth oracle on both counts. *)

module Dag = Sfr_dag.Dag
module Dag_check = Sfr_dag.Dag_check
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Trace = Sfr_runtime.Trace
module Workload = Sfr_workloads.Workload
module Registry = Sfr_workloads.Registry
module Detector = Sfr_detect.Detector
module Sf_order = Sfr_detect.Sf_order
module F_order = Sfr_detect.F_order
module Multibags = Sfr_detect.Multibags
module Naive_detector = Sfr_detect.Naive_detector

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let serial_with det prog =
  let (), _ = Serial_exec.run det.Detector.callbacks ~root:det.Detector.root prog in
  ()

let oracle_racy (inst : Workload.instance) =
  let trace, cb, root = Trace.make ~log_accesses:true () in
  let (), _ = Serial_exec.run cb ~root inst.Workload.program in
  let v = Naive_detector.analyze (Trace.dag trace) (Trace.accesses trace) in
  ( List.map (fun l -> l - inst.Workload.mem_base) v.Naive_detector.racy_locations,
    Trace.dag trace )

let detectors () =
  [
    ("sf-order", Sf_order.make ());
    ("sf-order/2pf", Sf_order.make ~readers:`Two_per_future ());
    ("f-order", F_order.make ());
    ("multibags", Multibags.make ());
  ]

(* serial execution computes the right answer and records a valid SF dag *)
let test_correct_serial (w : Workload.t) () =
  let inst = w.Workload.instantiate Workload.Tiny in
  let trace, cb, root = Trace.make () in
  let (), _ = Serial_exec.run cb ~root inst.Workload.program in
  check bool (w.name ^ ": output correct") true (inst.Workload.verify ());
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
    (w.name ^ ": valid SF dag") []
    (List.map
       (fun v -> (v.Dag_check.code, v.Dag_check.message))
       (Dag_check.validate_sf (Trace.dag trace)));
  check bool (w.name ^ ": uses futures") true (Dag.n_futures (Trace.dag trace) > 1)

let test_correct_parallel (w : Workload.t) () =
  List.iter
    (fun workers ->
      let inst = w.Workload.instantiate Workload.Tiny in
      let (), _ = Par_exec.run ~workers Sfr_runtime.Events.null ~root:Sfr_runtime.Events.Unit_state inst.Workload.program in
      check bool
        (Printf.sprintf "%s: parallel output correct (P=%d)" w.name workers)
        true
        (inst.Workload.verify ()))
    [ 1; 2; 4 ]

(* race-free as written: oracle finds nothing; neither does any detector *)
let test_race_free (w : Workload.t) () =
  let inst = w.Workload.instantiate Workload.Tiny in
  let racy, _ = oracle_racy inst in
  check (Alcotest.list int) (w.name ^ ": oracle finds no race") [] racy;
  List.iter
    (fun (name, det) ->
      let inst = w.Workload.instantiate Workload.Tiny in
      serial_with det inst.Workload.program;
      check int
        (Printf.sprintf "%s: %s finds no race" w.name name)
        0
        (List.length (Detector.racy_locations det)))
    (detectors ())

(* with an injected race, every detector's racy-location set equals the
   oracle's *)
let test_injected_race (w : Workload.t) () =
  let inst = w.Workload.instantiate ~inject_race:true Workload.Tiny in
  let expected, _ = oracle_racy inst in
  check bool (w.name ^ ": oracle sees the injected race") true (expected <> []);
  List.iter
    (fun (name, det) ->
      let inst = w.Workload.instantiate ~inject_race:true Workload.Tiny in
      serial_with det inst.Workload.program;
      let got =
        List.map (fun l -> l - inst.Workload.mem_base) (Detector.racy_locations det)
      in
      check (Alcotest.list int)
        (Printf.sprintf "%s: %s = oracle on injected race" w.name name)
        expected got)
    (detectors ())

(* parallel detection of the injected race (parallel-capable detectors) *)
let test_injected_race_parallel (w : Workload.t) () =
  let inst = w.Workload.instantiate ~inject_race:true Workload.Tiny in
  let expected, _ = oracle_racy inst in
  List.iter
    (fun workers ->
      List.iter
        (fun (name, make) ->
          let det = make () in
          let inst = w.Workload.instantiate ~inject_race:true Workload.Tiny in
          let (), _ =
            Par_exec.run ~workers det.Detector.callbacks ~root:det.Detector.root
              inst.Workload.program
          in
          let got =
            List.map
              (fun l -> l - inst.Workload.mem_base)
              (Detector.racy_locations det)
          in
          check (Alcotest.list int)
            (Printf.sprintf "%s: %s = oracle (P=%d)" w.name name workers)
            expected got)
        [ ("sf-order", fun () -> Sf_order.make ()); ("f-order", fun () -> F_order.make ()) ])
    [ 1; 2 ]

(* future counts match the construction (mm: 4 per internal node) *)
let test_mm_future_count () =
  let w = Option.get (Registry.find "mm") in
  let inst = w.Workload.instantiate Workload.Tiny in
  let trace, cb, root = Trace.make () in
  let (), _ = Serial_exec.run cb ~root inst.Workload.program in
  (* Tiny: N=8, B=2 -> internal nodes 1 + 8 = 9, futures 4*9 = 36 (+root) *)
  check int "mm tiny futures" 37 (Dag.n_futures (Trace.dag trace))

let test_sw_future_count () =
  let w = Option.get (Registry.find "sw") in
  let inst = w.Workload.instantiate Workload.Tiny in
  let trace, cb, root = Trace.make () in
  let (), _ = Serial_exec.run cb ~root inst.Workload.program in
  (* Tiny: 16/4 = 4x4 blocks -> 16 futures (+root) *)
  check int "sw tiny futures" 17 (Dag.n_futures (Trace.dag trace))

(* the fork-join Smith-Waterman variant: correct, race-free, racy when
   injected, and never better than the futures version in dag span *)
let test_sw_forkjoin () =
  let module Sw = Sfr_workloads.Sw in
  let module Dag_algo = Sfr_dag.Dag_algo in
  let inst = Sw.instantiate_forkjoin Workload.Tiny in
  let trace, cb, root = Trace.make () in
  let (), _ = Serial_exec.run cb ~root inst.Workload.program in
  check bool "fork-join sw correct" true (inst.Workload.verify ());
  check bool "valid SF dag" true (Dag_check.validate_sf (Trace.dag trace) = []);
  check int "no futures" 1 (Dag.n_futures (Trace.dag trace));
  (* race-free + injected race detected, against the oracle *)
  let inst = Sw.instantiate_forkjoin Workload.Tiny in
  let racy, _ = oracle_racy inst in
  check (Alcotest.list int) "race free" [] racy;
  let inst = Sw.instantiate_forkjoin ~inject_race:true Workload.Tiny in
  let racy, _ = oracle_racy inst in
  check bool "injected race visible" true (racy <> []);
  let det = Sf_order.make () in
  let inst2 = Sw.instantiate_forkjoin ~inject_race:true Workload.Tiny in
  serial_with det inst2.Workload.program;
  check (Alcotest.list int) "detector matches oracle" racy
    (List.map (fun l -> l - inst2.Workload.mem_base) (Detector.racy_locations det))

let test_sw_skew_span () =
  let module Sw = Sfr_workloads.Sw in
  let module Dag_algo = Sfr_dag.Dag_algo in
  let span_of instantiate =
    let inst = instantiate Workload.Small in
    let trace, cb, root = Trace.make () in
    let (), _ = Serial_exec.run cb ~root inst.Workload.program in
    Dag_algo.span (Trace.dag trace) Dag_algo.Full
  in
  let fut = span_of (fun s -> Sw.instantiate ~skew:true s) in
  let fj = span_of (fun s -> Sw.instantiate_forkjoin ~skew:true s) in
  check bool "futures span <= fork-join span under skew" true (fut <= fj)

let test_registry () =
  check int "five workloads" 5 (List.length Registry.all);
  check bool "find works" true (Registry.find "ferret" <> None);
  check bool "find misses" true (Registry.find "nope" = None)

let per_workload (w : Workload.t) =
  [
    Alcotest.test_case (w.Workload.name ^ ": serial correct") `Quick
      (test_correct_serial w);
    Alcotest.test_case (w.Workload.name ^ ": parallel correct") `Quick
      (test_correct_parallel w);
    Alcotest.test_case (w.Workload.name ^ ": race free") `Quick (test_race_free w);
    Alcotest.test_case (w.Workload.name ^ ": injected race") `Quick
      (test_injected_race w);
    Alcotest.test_case (w.Workload.name ^ ": injected race (parallel)") `Quick
      (test_injected_race_parallel w);
  ]

let () =
  Alcotest.run "workloads"
    [
      ("benchmarks", List.concat_map per_workload Registry.all);
      ( "structure",
        [
          Alcotest.test_case "mm future count" `Quick test_mm_future_count;
          Alcotest.test_case "sw future count" `Quick test_sw_future_count;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "sw fork-join variant" `Quick test_sw_forkjoin;
          Alcotest.test_case "sw skew span comparison" `Quick test_sw_skew_span;
        ] );
    ]
