module Json_min = Sfr_obs.Json_min
module Stats = Sfr_support.Stats

let version = 2

type env = {
  git_sha : string;
  ocaml_version : string;
  word_size : int;
  domains : int;
  scale : string;
}

type entry = {
  workload : string;
  detector : string;
  repeats : int;
  warmup : int;
  median : float;
  mad : float option;
  mean : float;
  stddev : float option;
  samples : float list;
  queries : int;
  reach_words : int;
  history_words : int;
  max_readers : int;
  racy_locations : int;
  metrics : (string * int) list;
}

type t = { version : int; env : env; entries : entry list }

(* -- environment capture ---------------------------------------------- *)

let git_sha () =
  (* best effort: bench results should carry provenance but must not
     depend on running inside a work tree *)
  try
    let ic =
      Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let capture_env ~scale =
  {
    git_sha = git_sha ();
    ocaml_version = Sys.ocaml_version;
    word_size = Sys.word_size;
    domains = Domain.recommended_domain_count ();
    scale;
  }

let of_measurement ~workload ~detector ~repeats (m : Runner.measurement) =
  let spread v = if repeats < 2 then None else Some v in
  {
    workload;
    detector;
    repeats;
    warmup = m.Runner.warmup;
    median = m.Runner.median;
    mad = spread m.Runner.mad;
    mean = m.Runner.seconds;
    stddev = spread m.Runner.stddev;
    samples = m.Runner.samples;
    queries = m.Runner.queries;
    reach_words = m.Runner.reach_words;
    history_words = m.Runner.history_words;
    max_readers = m.Runner.max_readers;
    racy_locations = m.Runner.racy_locations;
    metrics = m.Runner.metrics;
  }

(* -- emission ---------------------------------------------------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"';
  Buffer.contents b

let field b ?(last = false) name value =
  Buffer.add_string b (str name);
  Buffer.add_char b ':';
  Buffer.add_string b value;
  if not last then Buffer.add_char b ','

let fnum v = Printf.sprintf "%.9f" v
let opt_fnum = function None -> "null" | Some v -> fnum v

let entry_to_buf b e =
  Buffer.add_char b '{';
  field b "workload" (str e.workload);
  field b "detector" (str e.detector);
  field b "repeats" (string_of_int e.repeats);
  field b "warmup" (string_of_int e.warmup);
  field b "median" (fnum e.median);
  field b "mad" (opt_fnum e.mad);
  field b "mean" (fnum e.mean);
  field b "stddev" (opt_fnum e.stddev);
  field b "samples"
    ("[" ^ String.concat "," (List.map fnum e.samples) ^ "]");
  field b "queries" (string_of_int e.queries);
  field b "reach_words" (string_of_int e.reach_words);
  field b "history_words" (string_of_int e.history_words);
  field b "max_readers" (string_of_int e.max_readers);
  field b "racy_locations" (string_of_int e.racy_locations);
  Buffer.add_string b (str "metrics");
  Buffer.add_string b ":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (str name);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int v))
    e.metrics;
  Buffer.add_string b "}}"

let to_json t =
  let b = Buffer.create 8192 in
  Buffer.add_char b '{';
  field b "schema_version" (string_of_int t.version);
  Buffer.add_string b (str "env");
  Buffer.add_string b ":{";
  field b "git_sha" (str t.env.git_sha);
  field b "ocaml_version" (str t.env.ocaml_version);
  field b "word_size" (string_of_int t.env.word_size);
  field b "domains" (string_of_int t.env.domains);
  field b ~last:true "scale" (str t.env.scale);
  Buffer.add_string b "},";
  Buffer.add_string b (str "entries");
  Buffer.add_string b ":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      entry_to_buf b e)
    t.entries;
  Buffer.add_string b "]}";
  Buffer.contents b

let write path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n')

(* -- parsing ----------------------------------------------------------- *)

let ( let* ) = Result.bind

let mem name j ~where =
  match Json_min.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing field %S" where name)

let as_num ~where = function
  | Json_min.Num v -> Ok v
  | _ -> Error (where ^ ": expected a number")

let as_str ~where = function
  | Json_min.Str s -> Ok s
  | _ -> Error (where ^ ": expected a string")

let num name j ~where =
  let* v = mem name j ~where in
  as_num ~where:(where ^ "." ^ name) v

let int_f name j ~where =
  let* v = num name j ~where in
  Ok (int_of_float v)

let opt_num name j ~where =
  match Json_min.member name j with
  | None | Some Json_min.Null -> Ok None
  | Some v ->
      let* f = as_num ~where:(where ^ "." ^ name) v in
      Ok (Some f)

let string_f name j ~where =
  let* v = mem name j ~where in
  as_str ~where:(where ^ "." ^ name) v

let rec map_result f = function
  | [] -> Ok []
  | x :: xs ->
      let* y = f x in
      let* ys = map_result f xs in
      Ok (y :: ys)

let entry_of_json i j =
  let where = Printf.sprintf "entries[%d]" i in
  let* workload = string_f "workload" j ~where in
  let* detector = string_f "detector" j ~where in
  let* repeats = int_f "repeats" j ~where in
  let* warmup = int_f "warmup" j ~where in
  let* median = num "median" j ~where in
  let* mad = opt_num "mad" j ~where in
  let* mean = num "mean" j ~where in
  let* stddev = opt_num "stddev" j ~where in
  let* samples =
    let* v = mem "samples" j ~where in
    match v with
    | Json_min.Arr xs -> map_result (as_num ~where:(where ^ ".samples")) xs
    | _ -> Error (where ^ ".samples: expected an array")
  in
  let* queries = int_f "queries" j ~where in
  let* reach_words = int_f "reach_words" j ~where in
  let* history_words = int_f "history_words" j ~where in
  let* max_readers = int_f "max_readers" j ~where in
  let* racy_locations = int_f "racy_locations" j ~where in
  let* metrics =
    match Json_min.member "metrics" j with
    | Some (Json_min.Obj kvs) ->
        map_result
          (fun (k, v) ->
            let* f = as_num ~where:(where ^ ".metrics." ^ k) v in
            Ok (k, int_of_float f))
          kvs
    | Some _ -> Error (where ^ ".metrics: expected an object")
    | None -> Ok []
  in
  Ok
    {
      workload;
      detector;
      repeats;
      warmup;
      median;
      mad;
      mean;
      stddev;
      samples;
      queries;
      reach_words;
      history_words;
      max_readers;
      racy_locations;
      metrics;
    }

let of_json s =
  let* j = Json_min.parse s in
  let* v =
    match Json_min.member "schema_version" j with
    | Some (Json_min.Num v) -> Ok (int_of_float v)
    | Some _ -> Error "schema_version: expected a number"
    | None -> Error "not a bench schema file: no schema_version field"
  in
  if v <> version then
    Error
      (Printf.sprintf "schema version mismatch: file has v%d, tool expects v%d"
         v version)
  else
    let* envj = mem "env" j ~where:"root" in
    let* git_sha = string_f "git_sha" envj ~where:"env" in
    let* ocaml_version = string_f "ocaml_version" envj ~where:"env" in
    let* word_size = int_f "word_size" envj ~where:"env" in
    let* domains = int_f "domains" envj ~where:"env" in
    let* scale = string_f "scale" envj ~where:"env" in
    let* entries =
      match Json_min.member "entries" j with
      | Some (Json_min.Arr xs) ->
          map_result (fun (i, e) -> entry_of_json i e)
            (List.mapi (fun i e -> (i, e)) xs)
      | Some _ -> Error "entries: expected an array"
      | None -> Error "missing field \"entries\""
    in
    Ok
      {
        version = v;
        env = { git_sha; ocaml_version; word_size; domains; scale };
        entries;
      }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_json s
  | exception Sys_error msg -> Error msg

(* -- regression comparison --------------------------------------------- *)

type verdict = Improved | Unchanged | Regressed

type delta = {
  d_workload : string;
  d_detector : string;
  old_median : float;
  new_median : float;
  change_pct : float;
  threshold : float;
  verdict : verdict;
}

type diff = {
  deltas : delta list;
  added : (string * string) list;
  removed : (string * string) list;
  old_env : env;
  new_env : env;
}

(* The bar a change must clear to count: at least 10% of the old median,
   and at least 3 MADs of whichever run was noisier. With < 2 repeats the
   MAD is unknown (None) and only the 10% floor applies — so single-shot
   comparisons still work, just with less noise immunity. *)
let noise_threshold ~old_median ~old_mad ~new_mad =
  let mad = Float.max (Option.value old_mad ~default:0.0)
      (Option.value new_mad ~default:0.0)
  in
  Float.max (0.10 *. old_median) (3.0 *. mad)

let compare_entries (o : entry) (n : entry) =
  let threshold =
    noise_threshold ~old_median:o.median ~old_mad:o.mad ~new_mad:n.mad
  in
  let d = n.median -. o.median in
  let verdict =
    if d > threshold then Regressed
    else if -.d > threshold then Improved
    else Unchanged
  in
  {
    d_workload = o.workload;
    d_detector = o.detector;
    old_median = o.median;
    new_median = n.median;
    change_pct =
      (if o.median > 0.0 then 100.0 *. d /. o.median else 0.0);
    threshold;
    verdict;
  }

let diff ~old_ ~new_ =
  if old_.version <> version || new_.version <> version then
    Error
      (Printf.sprintf "cannot compare schema v%d against v%d (tool expects v%d)"
         old_.version new_.version version)
  else begin
    let key (e : entry) = (e.workload, e.detector) in
    let find t k = List.find_opt (fun e -> key e = k) t.entries in
    let deltas =
      List.filter_map
        (fun o ->
          Option.map (fun n -> compare_entries o n) (find new_ (key o)))
        old_.entries
    in
    let added =
      List.filter_map
        (fun n -> if find old_ (key n) = None then Some (key n) else None)
        new_.entries
    in
    let removed =
      List.filter_map
        (fun o -> if find new_ (key o) = None then Some (key o) else None)
        old_.entries
    in
    Ok { deltas; added; removed; old_env = old_.env; new_env = new_.env }
  end

let has_regression d =
  List.exists (fun x -> x.verdict = Regressed) d.deltas

let pp_verdict ppf = function
  | Improved -> Format.pp_print_string ppf "improved"
  | Unchanged -> Format.pp_print_string ppf "ok"
  | Regressed -> Format.pp_print_string ppf "REGRESSED"

let pp_diff ppf d =
  let pp_env ppf (e : env) =
    Format.fprintf ppf "%s ocaml-%s %d-bit %d-domains scale=%s" e.git_sha
      e.ocaml_version e.word_size e.domains e.scale
  in
  Format.fprintf ppf "old: %a@.new: %a@." pp_env d.old_env pp_env d.new_env;
  List.iter
    (fun x ->
      Format.fprintf ppf "%-14s %-14s %10.6fs -> %10.6fs  %+6.1f%%  (gate %.6fs)  %a@."
        x.d_workload x.d_detector x.old_median x.new_median x.change_pct
        x.threshold pp_verdict x.verdict)
    d.deltas;
  List.iter
    (fun (w, det) -> Format.fprintf ppf "added:   %s/%s (no baseline)@." w det)
    d.added;
  List.iter
    (fun (w, det) -> Format.fprintf ppf "removed: %s/%s (baseline only)@." w det)
    d.removed;
  let count v = List.length (List.filter (fun x -> x.verdict = v) d.deltas) in
  Format.fprintf ppf "%d compared: %d regressed, %d improved, %d unchanged@."
    (List.length d.deltas) (count Regressed) (count Improved) (count Unchanged)
