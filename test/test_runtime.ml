(* Tests for the execution substrate: the serial (depth-first) executor,
   the multicore work-stealing executor, the dag recorder, and the DSL's
   structured-use enforcement. The synthetic program generator provides
   schedule-independent random programs to cross-check executors. *)

module Dag = Sfr_dag.Dag
module Dag_algo = Sfr_dag.Dag_algo
module Dag_check = Sfr_dag.Dag_check
module Events = Sfr_runtime.Events
module Program = Sfr_runtime.Program
module Serial_exec = Sfr_runtime.Serial_exec
module Par_exec = Sfr_runtime.Par_exec
module Trace = Sfr_runtime.Trace
module Synthetic = Sfr_workloads.Synthetic

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let run_serial_traced ?(log = false) prog =
  let trace, cb, root = Trace.make ~log_accesses:log () in
  let result, _final = Serial_exec.run cb ~root prog in
  (result, trace)

(* ------------------------------------------------------------------ *)
(* Basic serial semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_serial_plain () =
  let result, trace = run_serial_traced (fun () -> 21 * 2) in
  check int "result" 42 result;
  check int "just the root node" 1 (Dag.n_nodes (Trace.dag trace));
  check bool "valid" true (Dag_check.validate_sf (Trace.dag trace) = [])

let rec fib n =
  if n < 2 then n
  else begin
    let a = ref 0 in
    Program.spawn (fun () -> a := fib (n - 1));
    let b = fib (n - 2) in
    Program.sync ();
    !a + b
  end

let test_serial_fib () =
  let result, trace = run_serial_traced (fun () -> fib 10) in
  check int "fib 10" 55 result;
  let dag = Trace.dag trace in
  check bool "valid SF" true (Dag_check.validate_sf dag = []);
  check int "one future (root)" 1 (Dag.n_futures dag);
  check bool "nontrivial dag" true (Dag.n_nodes dag > 100)

let test_serial_futures_pipeline () =
  let prog () =
    let h1 = Program.create (fun () -> 10) in
    let h2 = Program.create (fun () -> Program.get h1 * 2) in
    Program.get h2 + 1
  in
  let result, trace = run_serial_traced prog in
  check int "pipeline result" 21 result;
  let dag = Trace.dag trace in
  check int "three futures" 3 (Dag.n_futures dag);
  check bool "valid SF" true (Dag_check.validate_sf dag = [])

let test_serial_memory_counts () =
  let prog () =
    let a = Program.alloc 8 0 in
    for i = 0 to 7 do
      Program.wr a i i
    done;
    let s = ref 0 in
    for i = 0 to 7 do
      s := !s + Program.rd a i
    done;
    !s
  in
  let result, trace = run_serial_traced prog in
  check int "sum" 28 result;
  check int "writes" 8 (Trace.writes trace);
  check int "reads" 8 (Trace.reads trace)

let test_serial_access_log () =
  let prog () =
    let a = Program.alloc 2 0 in
    Program.wr a 0 1;
    ignore (Program.rd a 1);
    0
  in
  let _, trace = run_serial_traced ~log:true prog in
  let log = Trace.accesses trace in
  check int "two accesses" 2 (List.length log);
  check int "one write" 1
    (List.length (List.filter (fun a -> a.Trace.is_write) log))

let test_serial_unstructured_get_blocks () =
  (* a future that tries to get a sibling created later via a side cell:
     in a depth-first serial execution the cell is still empty, which the
     executor reports as unstructured use (assert false would fire first
     here, so we instead test the direct blocking case: a future getting
     its own not-yet-created... simplest: get inside the future of a
     handle that is running = impossible to build without side channels.
     We test the single-touch violation instead, plus Handle misuse. *)
  let prog () =
    let h = Program.create (fun () -> 5) in
    let x = Program.get h in
    let y = Program.get h in
    x + y
  in
  Alcotest.check_raises "single touch"
    (Program.Unstructured_use "get invoked twice on the same future handle")
    (fun () -> ignore (run_serial_traced prog))

let test_serial_exception_propagates () =
  let prog () = failwith "boom" in
  Alcotest.check_raises "exception" (Failure "boom") (fun () ->
      ignore (run_serial_traced prog))

(* Spawned children join at the next explicit sync; a frame end works too *)
let test_serial_implicit_sync () =
  let prog () =
    let cell = ref 0 in
    Program.spawn (fun () -> cell := 7)
    (* no explicit sync: frame end joins *);
    cell
  in
  let cell, trace = run_serial_traced prog in
  check int "joined at frame end" 7 !cell;
  let dag = Trace.dag trace in
  (* root, spawn child, continuation, frame-end sync *)
  check int "four nodes" 4 (Dag.n_nodes dag)

(* ------------------------------------------------------------------ *)
(* Parallel executor                                                    *)
(* ------------------------------------------------------------------ *)

let run_par_traced ~workers prog =
  let trace, cb, root = Trace.make () in
  let result, _final = Par_exec.run ~workers cb ~root prog in
  (result, trace)

let test_par_fib () =
  List.iter
    (fun workers ->
      let result, trace = run_par_traced ~workers (fun () -> fib 10) in
      check int "fib 10" 55 result;
      check bool "valid SF" true (Dag_check.validate_sf (Trace.dag trace) = []))
    [ 1; 2; 4 ]

let test_par_future_suspension () =
  (* help-first scheduling makes the parent reach the get before the
     future ran, exercising the park/resume path even with one worker *)
  let prog () =
    let h = Program.create (fun () -> fib 8) in
    Program.get h
  in
  List.iter
    (fun workers ->
      let result, _ = run_par_traced ~workers prog in
      check int "suspended get" 21 result)
    [ 1; 2 ]

let test_par_sync_suspension () =
  let prog () =
    let cell = ref 0 in
    Program.spawn (fun () -> cell := fib 8);
    Program.sync ();
    !cell
  in
  List.iter
    (fun workers ->
      let result, _ = run_par_traced ~workers prog in
      check int "suspended sync" 21 result)
    [ 1; 2 ]

let test_par_escaping_future () =
  (* the root returns while the created future may still be queued; run
     must wait for quiescence and record the future's put node *)
  let prog () =
    let _h = Program.create (fun () -> fib 6) in
    3
  in
  let result, trace = run_par_traced ~workers:2 prog in
  check int "result" 3 result;
  let dag = Trace.dag trace in
  check bool "future completed and recorded" true
    (Dag.last_of dag 1 <> None);
  check bool "valid" true (Dag_check.validate_sf dag = [])

let test_par_single_touch () =
  let prog () =
    let h = Program.create (fun () -> 5) in
    Program.get h + Program.get h
  in
  Alcotest.check_raises "single touch in parallel"
    (Program.Unstructured_use "get invoked twice on the same future handle")
    (fun () -> ignore (run_par_traced ~workers:2 prog))

let test_par_exception () =
  Alcotest.check_raises "exception from worker" (Failure "par-boom") (fun () ->
      ignore
        (run_par_traced ~workers:2 (fun () ->
             Program.spawn (fun () -> failwith "par-boom");
             Program.sync ())))

(* An exception thrown deep inside nested spawns must reach the caller
   rather than deadlock the join: workers parked on the failure must be
   released and the pending continuations discarded. Every worker count
   exercises a different parking pattern. *)
let test_par_nested_exception_no_deadlock () =
  List.iter
    (fun workers ->
      Alcotest.check_raises
        (Printf.sprintf "deep exception with %d workers" workers)
        (Failure "deep-boom")
        (fun () ->
          ignore
            (run_par_traced ~workers (fun () ->
                 Program.spawn (fun () ->
                     Program.spawn (fun () ->
                         Program.spawn (fun () ->
                             Program.work 2;
                             failwith "deep-boom");
                         Program.sync ());
                     Program.sync ());
                 (* sibling work keeps other workers busy at failure time *)
                 Program.spawn (fun () -> Program.work 50);
                 Program.sync ()))))
    [ 1; 2; 4 ]

(* exception raised inside a future body, with the get still pending *)
let test_par_future_exception_no_deadlock () =
  Alcotest.check_raises "future body exception" (Failure "future-boom")
    (fun () ->
      ignore
        (run_par_traced ~workers:4 (fun () ->
             let h = Program.create (fun () -> failwith "future-boom") in
             Program.work 10;
             ignore (Program.get h))))

(* ------------------------------------------------------------------ *)
(* Deque model check                                                    *)
(* ------------------------------------------------------------------ *)

(* Randomized differential test of the worker deque against a list
   model: push_bottom/pop_bottom at one end, steal_top at the other.
   Tasks are identified by a mutable cell each sets; thousands of ops
   cross the ring buffer's grow and wraparound paths. *)
let test_deque_vs_model () =
  let module Deque = Par_exec.Deque in
  let rng = Sfr_support.Prng.create 0xDEC0DE in
  let d = Deque.create () in
  let model = ref [] in (* bottom of deque = head of list *)
  let last = ref (-1) in
  let mk i = (i, fun () -> last := i) in
  let run_thunk t = t (); !last in
  let next = ref 0 in
  for _ = 1 to 5_000 do
    match Sfr_support.Prng.int rng 5 with
    | 0 | 1 | 2 ->
        let i, t = mk !next in
        incr next;
        Deque.push_bottom d t;
        model := (i, t) :: !model
    | 3 -> (
        match (Deque.pop_bottom d, !model) with
        | None, [] -> ()
        | Some t, (i, _) :: rest ->
            model := rest;
            Alcotest.(check int) "pop_bottom matches model" i (run_thunk t)
        | Some _, [] -> Alcotest.fail "deque has task, model empty"
        | None, _ :: _ -> Alcotest.fail "deque empty, model has task")
    | _ -> (
        match (Deque.steal_top d, List.rev !model) with
        | None, [] -> ()
        | Some t, (i, _) :: rest ->
            model := List.rev rest;
            Alcotest.(check int) "steal_top matches model" i (run_thunk t)
        | Some _, [] -> Alcotest.fail "deque has task, model empty"
        | None, _ :: _ -> Alcotest.fail "deque empty, model has task")
  done;
  (* drain and compare the final contents *)
  let rec drain acc =
    match Deque.pop_bottom d with
    | Some t -> drain (run_thunk t :: acc)
    | None -> List.rev acc
  in
  let deque_rest = drain [] in
  let model_rest = List.map fst !model in
  Alcotest.(check (list int)) "residual contents match" model_rest deque_rest

(* ------------------------------------------------------------------ *)
(* Synthetic cross-executor properties                                  *)
(* ------------------------------------------------------------------ *)

let dag_signature dag =
  let c = Dag_algo.counts dag in
  ( c.Dag_algo.nodes,
    c.Dag_algo.futures,
    c.Dag_algo.sp_edges,
    c.Dag_algo.create_edges,
    c.Dag_algo.get_edges )

let prop_serial_valid_and_deterministic =
  QCheck2.Test.make ~name:"synthetic: serial runs are valid and deterministic"
    ~count:100
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let t = Synthetic.generate ~seed ~ops:120 ~depth:5 ~locs:12 () in
      let i1 = Synthetic.instantiate t in
      let i2 = Synthetic.instantiate t in
      let (), trace1 = run_serial_traced i1.Synthetic.program in
      let (), trace2 = run_serial_traced i2.Synthetic.program in
      Dag_check.validate_sf (Trace.dag trace1) = []
      && i1.Synthetic.checksum () = i2.Synthetic.checksum ()
      && dag_signature (Trace.dag trace1) = dag_signature (Trace.dag trace2))

let prop_parallel_matches_serial =
  QCheck2.Test.make ~name:"synthetic: parallel = serial (checksum, dag shape)"
    ~count:60
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 3))
    (fun (seed, workers) ->
      let t = Synthetic.generate ~seed ~ops:100 ~depth:5 ~locs:12 () in
      let is_ = Synthetic.instantiate t in
      let ip = Synthetic.instantiate t in
      let (), trace_s = run_serial_traced is_.Synthetic.program in
      let (), trace_p = run_par_traced ~workers ip.Synthetic.program in
      is_.Synthetic.checksum () = ip.Synthetic.checksum ()
      && Dag_check.validate_sf (Trace.dag trace_p) = []
      && dag_signature (Trace.dag trace_s) = dag_signature (Trace.dag trace_p))

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_serial_valid_and_deterministic; prop_parallel_matches_serial ]

let () =
  Alcotest.run "runtime"
    [
      ( "serial",
        [
          Alcotest.test_case "plain" `Quick test_serial_plain;
          Alcotest.test_case "fib" `Quick test_serial_fib;
          Alcotest.test_case "futures pipeline" `Quick test_serial_futures_pipeline;
          Alcotest.test_case "memory counts" `Quick test_serial_memory_counts;
          Alcotest.test_case "access log" `Quick test_serial_access_log;
          Alcotest.test_case "single touch" `Quick test_serial_unstructured_get_blocks;
          Alcotest.test_case "exception" `Quick test_serial_exception_propagates;
          Alcotest.test_case "implicit sync" `Quick test_serial_implicit_sync;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "fib" `Quick test_par_fib;
          Alcotest.test_case "future suspension" `Quick test_par_future_suspension;
          Alcotest.test_case "sync suspension" `Quick test_par_sync_suspension;
          Alcotest.test_case "escaping future" `Quick test_par_escaping_future;
          Alcotest.test_case "single touch" `Quick test_par_single_touch;
          Alcotest.test_case "exception" `Quick test_par_exception;
          Alcotest.test_case "nested exception no deadlock" `Quick
            test_par_nested_exception_no_deadlock;
          Alcotest.test_case "future exception no deadlock" `Quick
            test_par_future_exception_no_deadlock;
        ] );
      ("deque", [ Alcotest.test_case "vs list model" `Quick test_deque_vs_model ]);
      ("properties", qtests);
    ]
